package egp_test

import (
	"testing"
	"time"

	"darpanet/internal/core"
	"darpanet/internal/egp"
	"darpanet/internal/ipv4"
	"darpanet/internal/phys"
	"darpanet/internal/rip"
	"darpanet/internal/sim"
	"darpanet/internal/stack"
	"darpanet/internal/udp"
)

func fastEGP() egp.Config {
	return egp.Config{UpdateInterval: 2 * time.Second, HoldTime: 7 * time.Second}
}

// threeAS builds AS1 -- AS2 -- AS3 in a line. Each AS is one border
// gateway owning one stub LAN; inter-AS links are P2P nets.
//
//	stub1--bg1 ==x12== bg2--stub2, bg2 ==x23== bg3--stub3
func threeAS(seed int64) (*core.Network, map[int]*egp.Speaker) {
	nw := core.New(seed)
	lan := phys.Config{BitsPerSec: 10_000_000, Delay: time.Millisecond, MTU: 1500}
	link := phys.Config{BitsPerSec: 1_544_000, Delay: 5 * time.Millisecond, MTU: 1500}
	nw.AddNet("stub1", "10.1.0.0/24", core.LAN, lan)
	nw.AddNet("stub2", "10.2.0.0/24", core.LAN, lan)
	nw.AddNet("stub3", "10.3.0.0/24", core.LAN, lan)
	nw.AddNet("x12", "192.0.1.0/24", core.P2P, link)
	nw.AddNet("x23", "192.0.2.0/24", core.P2P, link)
	nw.AddHost("h1", "stub1")
	nw.AddHost("h3", "stub3")
	nw.AddGateway("bg1", "stub1", "x12")
	nw.AddGateway("bg2", "x12", "stub2", "x23")
	nw.AddGateway("bg3", "x23", "stub3")
	nw.SetDefaultRoute("h1", "bg1")
	nw.SetDefaultRoute("h3", "bg3")

	speakers := make(map[int]*egp.Speaker)
	mk := func(i int, name string, as egp.AS, originates string) *egp.Speaker {
		s, err := egp.New(nw.Node(name), nw.UDP(name), as, fastEGP())
		if err != nil {
			panic(err)
		}
		s.Originate(ipv4.MustParsePrefix(originates))
		speakers[i] = s
		return s
	}
	s1 := mk(1, "bg1", 1, "10.1.0.0/24")
	s2 := mk(2, "bg2", 2, "10.2.0.0/24")
	s3 := mk(3, "bg3", 3, "10.3.0.0/24")

	// Peerings over the shared inter-AS nets.
	s1.AddPeer(addrOn(nw, "bg2", "x12"))
	s2.AddPeer(addrOn(nw, "bg1", "x12"))
	s2.AddPeer(addrOn(nw, "bg3", "x23"))
	s3.AddPeer(addrOn(nw, "bg2", "x23"))

	for _, s := range speakers {
		s.Start()
	}
	return nw, speakers
}

func addrOn(nw *core.Network, node, net string) ipv4.Addr {
	p := nw.Prefix(net)
	for _, ifc := range nw.Node(node).Interfaces() {
		if ifc.Prefix == p {
			return ifc.Addr
		}
	}
	panic("node not on net")
}

func TestTransitReachability(t *testing.T) {
	nw, speakers := threeAS(1)
	nw.RunFor(20 * time.Second)

	// AS1's border must have learned AS3's stub through AS2.
	path, ok := speakers[1].PathTo(ipv4.MustParsePrefix("10.3.0.0/24"))
	if !ok {
		t.Fatal("bg1 has no route to AS3's stub")
	}
	if len(path) != 2 || path[0] != 2 || path[1] != 3 {
		t.Fatalf("AS path = %v, want [2 3]", path)
	}

	// And traffic flows end to end: h1 (AS1) pings h3 (AS3).
	got := 0
	nw.Node("h1").Ping(nw.Addr("h3"), 3, 50*time.Millisecond, func(uint16, sim.Duration) { got++ })
	nw.RunFor(2 * time.Second)
	if got != 3 {
		t.Fatalf("pings across two AS boundaries = %d, want 3", got)
	}
}

func TestLoopPrevention(t *testing.T) {
	// Receiver-side AS-path loop rejection, exercised directly: a peer
	// advertises a route whose path already contains the receiver's own
	// AS. The receiver must reject it and install nothing.
	nw := core.New(3)
	link := phys.Config{BitsPerSec: 1_544_000, Delay: 5 * time.Millisecond, MTU: 1500}
	nw.AddNet("x", "192.0.1.0/24", core.P2P, link)
	nw.AddGateway("bgA", "x")
	nw.AddGateway("bgB", "x")
	sA, err := egp.New(nw.Node("bgA"), nw.UDP("bgA"), 7, fastEGP())
	if err != nil {
		t.Fatal(err)
	}
	sA.AddPeer(addrOn(nw, "bgB", "x"))
	sA.Start()

	// bgB is not a speaker: it crafts a raw advertisement claiming a
	// prefix whose AS path runs ...through AS 7 itself.
	sock, err := nw.UDP("bgB").Listen(179, nil)
	if err != nil {
		t.Fatal(err)
	}
	evil := []byte{1, 0, 9, 1, // ver, senderAS=9, count=1
		10, 5, 0, 0, // prefix 10.5.0.0
		24,   // bits
		3,    // path length
		0, 9, // AS 9
		0, 7, // AS 7  <- the receiver itself: loop!
		0, 4, // AS 4
	}
	nw.Kernel().After(time.Second, func() {
		sock.SendTo(udp.Endpoint{Addr: addrOn(nw, "bgA", "x"), Port: egp.Port}, evil)
	})
	nw.RunFor(10 * time.Second)
	if sA.Stats().LoopsRejected != 1 {
		t.Fatalf("LoopsRejected = %d, want 1", sA.Stats().LoopsRejected)
	}
	if sA.RouteCount() != 0 {
		t.Fatal("looped route was installed")
	}

	// The same advertisement without the loop is accepted.
	fine := []byte{1, 0, 9, 1,
		10, 5, 0, 0, 24, 2,
		0, 9, 0, 4,
	}
	nw.Kernel().After(time.Second, func() {
		sock.SendTo(udp.Endpoint{Addr: addrOn(nw, "bgA", "x"), Port: egp.Port}, fine)
	})
	// Check inside the hold time: a silent crafted peer legitimately
	// expires afterwards.
	nw.RunFor(3 * time.Second)
	if sA.RouteCount() != 1 {
		t.Fatalf("clean route not installed: %d", sA.RouteCount())
	}
	path, _ := sA.PathTo(ipv4.MustParsePrefix("10.5.0.0/24"))
	if len(path) != 2 || path[0] != 9 || path[1] != 4 {
		t.Fatalf("path = %v, want [9 4]", path)
	}
}

// TestSteadyStateEchoSuppression verifies the triangle converges with no
// route to one's own prefix anywhere and sane paths everywhere (the
// split-horizon export rule keeps steady state loop-free even before the
// receiver-side check fires).
func TestSteadyStateEchoSuppression(t *testing.T) {
	nw := core.New(3)
	lan := phys.Config{BitsPerSec: 10_000_000, Delay: time.Millisecond, MTU: 1500}
	link := phys.Config{BitsPerSec: 1_544_000, Delay: 5 * time.Millisecond, MTU: 1500}
	nw.AddNet("stub1", "10.1.0.0/24", core.LAN, lan)
	nw.AddNet("x12", "192.0.1.0/24", core.P2P, link)
	nw.AddNet("x23", "192.0.2.0/24", core.P2P, link)
	nw.AddNet("x31", "192.0.3.0/24", core.P2P, link)
	nw.AddGateway("bg1", "stub1", "x12", "x31")
	nw.AddGateway("bg2", "x12", "x23")
	nw.AddGateway("bg3", "x23", "x31")
	var ss []*egp.Speaker
	for i, name := range []string{"bg1", "bg2", "bg3"} {
		s, err := egp.New(nw.Node(name), nw.UDP(name), egp.AS(i+1), fastEGP())
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	ss[0].Originate(ipv4.MustParsePrefix("10.1.0.0/24"))
	ss[0].AddPeer(addrOn(nw, "bg2", "x12"))
	ss[0].AddPeer(addrOn(nw, "bg3", "x31"))
	ss[1].AddPeer(addrOn(nw, "bg1", "x12"))
	ss[1].AddPeer(addrOn(nw, "bg3", "x23"))
	ss[2].AddPeer(addrOn(nw, "bg2", "x23"))
	ss[2].AddPeer(addrOn(nw, "bg1", "x31"))
	for _, s := range ss {
		s.Start()
	}
	nw.RunFor(30 * time.Second)
	if ss[0].RouteCount() != 0 {
		t.Fatal("origin accepted an exterior route to its own prefix")
	}
	for i := 1; i <= 2; i++ {
		p, ok := ss[i].PathTo(ipv4.MustParsePrefix("10.1.0.0/24"))
		if !ok || p[len(p)-1] != 1 || len(p) != 1 {
			t.Fatalf("bg%d path = %v ok=%v, want direct [1]", i+1, p, ok)
		}
	}
}

func TestPeerExpiryWithdrawsRoutes(t *testing.T) {
	nw, speakers := threeAS(1)
	nw.RunFor(20 * time.Second)
	if speakers[1].RouteCount() < 2 {
		t.Fatalf("bg1 routes = %d, want >= 2", speakers[1].RouteCount())
	}
	// Silence AS2 entirely: AS1 must withdraw everything it learned.
	nw.CrashNode("bg2")
	nw.RunFor(30 * time.Second)
	if speakers[1].RouteCount() != 0 {
		t.Fatalf("routes survived peer death: %d", speakers[1].RouteCount())
	}
	if speakers[1].Stats().PeerExpiries == 0 {
		t.Fatal("no peer expiry recorded")
	}
	if _, ok := nw.Node("bg1").Table.Lookup(nw.Addr("h3")); ok {
		t.Fatal("kernel table kept a withdrawn exterior route")
	}
}

func TestShorterPathPreferred(t *testing.T) {
	// AS1 can reach AS4 via AS2 (path length 2) or via AS2-AS3 (3).
	// Build: bg1 peers bg2 and bg3; bg2 peers bg4; bg3 peers bg2 (so
	// bg3's route to AS4 is longer). Simpler: square 1-2-4 and 1-3-2-4.
	nw := core.New(7)
	lan := phys.Config{BitsPerSec: 10_000_000, Delay: time.Millisecond, MTU: 1500}
	link := phys.Config{BitsPerSec: 1_544_000, Delay: 5 * time.Millisecond, MTU: 1500}
	nw.AddNet("stub4", "10.4.0.0/24", core.LAN, lan)
	nw.AddNet("x12", "192.0.1.0/24", core.P2P, link)
	nw.AddNet("x13", "192.0.2.0/24", core.P2P, link)
	nw.AddNet("x32", "192.0.3.0/24", core.P2P, link)
	nw.AddNet("x24", "192.0.4.0/24", core.P2P, link)
	nw.AddGateway("bg1", "x12", "x13")
	nw.AddGateway("bg2", "x12", "x32", "x24")
	nw.AddGateway("bg3", "x13", "x32")
	nw.AddGateway("bg4", "x24", "stub4")
	mk := func(name string, as egp.AS) *egp.Speaker {
		s, err := egp.New(nw.Node(name), nw.UDP(name), as, fastEGP())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2, s3, s4 := mk("bg1", 1), mk("bg2", 2), mk("bg3", 3), mk("bg4", 4)
	s4.Originate(ipv4.MustParsePrefix("10.4.0.0/24"))
	s1.AddPeer(addrOn(nw, "bg2", "x12"))
	s1.AddPeer(addrOn(nw, "bg3", "x13"))
	s2.AddPeer(addrOn(nw, "bg1", "x12"))
	s2.AddPeer(addrOn(nw, "bg3", "x32"))
	s2.AddPeer(addrOn(nw, "bg4", "x24"))
	s3.AddPeer(addrOn(nw, "bg1", "x13"))
	s3.AddPeer(addrOn(nw, "bg2", "x32"))
	s4.AddPeer(addrOn(nw, "bg2", "x24"))
	for _, s := range []*egp.Speaker{s1, s2, s3, s4} {
		s.Start()
	}
	nw.RunFor(30 * time.Second)
	path, ok := s1.PathTo(ipv4.MustParsePrefix("10.4.0.0/24"))
	if !ok {
		t.Fatal("no route at bg1")
	}
	if len(path) != 2 || path[0] != 2 || path[1] != 4 {
		t.Fatalf("path = %v, want the short way [2 4]", path)
	}
	// And failover: kill bg2 — the long way via AS3 must take over...
	// but AS3's only route was via AS2 as well; with AS2 dead nothing
	// remains, so the route disappears. Verify clean withdrawal.
	nw.CrashNode("bg2")
	nw.RunFor(30 * time.Second)
	if _, ok := s1.PathTo(ipv4.MustParsePrefix("10.4.0.0/24")); ok {
		t.Fatal("route survived the death of its only transit")
	}
}

func TestEGPYieldsToInteriorRoutes(t *testing.T) {
	// A gateway with both an interior (static) and an exterior route to
	// the same prefix must prefer the interior one.
	nw, _ := threeAS(1)
	nw.RunFor(20 * time.Second)
	bg1 := nw.Node("bg1")
	p := ipv4.MustParsePrefix("10.3.0.0/24")
	r, ok := bg1.Table.Lookup(p.Host(1))
	if !ok {
		t.Fatal("no route")
	}
	if r.Source != 0 { // stack.SourceEGP
		t.Fatalf("expected the EGP route first, got %v", r.Source)
	}
	// Now an operator installs a static route: it must win.
	via := addrOn(nw, "bg2", "x12")
	bg1.Table.Add(staticRoute(p, via, 1))
	r, _ = bg1.Table.Lookup(p.Host(1))
	if r.Source.String() != "static" {
		t.Fatalf("static did not shadow egp: %v", r.Source)
	}
}

// staticRoute builds an operator route for the preference test.
func staticRoute(p ipv4.Prefix, via ipv4.Addr, ifIndex int) stack.Route {
	return stack.Route{Prefix: p, Via: via, IfIndex: ifIndex, Metric: 1, Source: stack.SourceStatic}
}

func TestImplicitWithdrawal(t *testing.T) {
	// A transit AS that loses its downstream must stop advertising the
	// route, and its peers must drop it even though the peer session
	// itself stays healthy.
	nw, speakers := threeAS(1)
	nw.RunFor(20 * time.Second)
	if _, ok := speakers[1].PathTo(ipv4.MustParsePrefix("10.3.0.0/24")); !ok {
		t.Fatal("no initial route")
	}
	// Kill AS3's border: AS2's session to it dies, AS2 withdraws the
	// route from its own advertisements, and AS1 — whose session to AS2
	// remains alive — must lose the route by implicit withdrawal.
	nw.CrashNode("bg3")
	nw.RunFor(30 * time.Second)
	if _, ok := speakers[1].PathTo(ipv4.MustParsePrefix("10.3.0.0/24")); ok {
		t.Fatal("bg1 kept a route AS2 no longer advertises")
	}
	// AS2's own stub is still reachable: the session never dropped.
	if _, ok := speakers[1].PathTo(ipv4.MustParsePrefix("10.2.0.0/24")); !ok {
		t.Fatal("healthy route was withdrawn too")
	}
}

func TestRIPInterfaceFilter(t *testing.T) {
	// A border gateway with a filtered interface must not leak interior
	// routes across it.
	nw := core.New(2)
	lan := phys.Config{BitsPerSec: 10_000_000, Delay: time.Millisecond, MTU: 1500}
	nw.AddNet("inside", "10.1.0.0/24", core.LAN, lan)
	nw.AddNet("outside", "192.0.9.0/24", core.LAN, lan)
	nw.AddGateway("border", "inside", "outside")
	nw.AddGateway("foreign", "outside")
	nw.EnableRIP(fastRIPcfg(), "border", "foreign")
	nw.RIP("border").SetInterfaceFilter(func(ifc *stack.Interface) bool {
		return ifc.Prefix == nw.Prefix("inside")
	})
	nw.RunFor(15 * time.Second)
	// The foreign gateway must not have learned the inside prefix.
	if _, ok := nw.Node("foreign").Table.Lookup(nw.Prefix("inside").Host(1)); ok {
		t.Fatal("interior route leaked across the filtered interface")
	}
}

func fastRIPcfg() rip.Config {
	return rip.Config{UpdateInterval: 2 * time.Second, RouteTimeout: 7 * time.Second,
		GCTimeout: 4 * time.Second, TriggeredDelay: 200 * time.Millisecond}
}
