// Package egp implements a path-vector exterior routing protocol in the
// spirit of the EGP the paper's "regions" used (and of the BGP that
// replaced it).
//
// The 1988 architecture's distributed-management goal has two layers:
// inside an administration, gateways gossip full topology (internal/rip);
// *between* administrations, border gateways exchange only reachability —
// which networks each autonomous system can deliver to, and through which
// chain of systems — because no administration will let another compute
// its interior routes. The AS path serves double duty: it is the metric
// (shorter is better) and the loop breaker (a system rejects any route
// whose path already names it).
package egp

import (
	"encoding/binary"
	"fmt"
	"sort"

	"darpanet/internal/ipv4"
	"darpanet/internal/metrics"
	"darpanet/internal/sim"
	"darpanet/internal/stack"
	"darpanet/internal/udp"
)

// Port is the UDP port border gateways peer on.
const Port = 179

// AS identifies an autonomous system.
type AS uint16

// Config tunes the protocol timers.
type Config struct {
	// UpdateInterval is the period between full advertisements to each
	// peer.
	UpdateInterval sim.Duration
	// HoldTime expires a peer (and withdraws its routes) when no
	// update arrives.
	HoldTime sim.Duration
}

// DefaultConfig returns the default timers (10 s updates, 30 s hold).
func DefaultConfig() Config {
	return Config{UpdateInterval: 10 * 1e9, HoldTime: 30 * 1e9}
}

// Stats counts protocol activity.
type Stats struct {
	UpdatesSent     uint64
	UpdatesReceived uint64
	RoutesAccepted  uint64
	LoopsRejected   uint64
	PeerExpiries    uint64
}

// learnedRoute is one path-vector entry from one peer.
type learnedRoute struct {
	prefix ipv4.Prefix
	path   []AS // path[0] is the origin's neighbor... path[len-1] is the advertising AS
	peer   ipv4.Addr
}

// peer is a configured neighbor. Its AS is learned from its updates; a
// peer in the speaker's own AS is an interior peer (the iBGP idea): paths
// exchanged with it are not prepended, so the AS appears once in exterior
// paths no matter how many border gateways the AS has.
type peer struct {
	addr      ipv4.Addr
	as        AS // 0 until the peer speaks
	lastHeard sim.Time
	alive     bool
}

// Speaker runs the exterior protocol on one border gateway.
type Speaker struct {
	node *stack.Node
	k    *sim.Kernel
	sock *udp.Socket
	cfg  Config
	as   AS

	originated []ipv4.Prefix
	peers      map[ipv4.Addr]*peer
	// learned[prefix][peerAddr] = route
	learned map[ipv4.Prefix]map[ipv4.Addr]learnedRoute
	stats   Stats
	started bool
	tick    sim.Timer
}

// New creates a speaker for autonomous system as on border gateway n.
func New(n *stack.Node, t *udp.Transport, as AS, cfg Config) (*Speaker, error) {
	if cfg.UpdateInterval <= 0 {
		cfg = DefaultConfig()
	}
	s := &Speaker{
		node:    n,
		k:       n.Kernel(),
		cfg:     cfg,
		as:      as,
		peers:   make(map[ipv4.Addr]*peer),
		learned: make(map[ipv4.Prefix]map[ipv4.Addr]learnedRoute),
	}
	sock, err := t.Listen(Port, s.input)
	if err != nil {
		return nil, fmt.Errorf("egp: %w", err)
	}
	s.sock = sock
	reg := metrics.For(s.k)
	reg.Counter(n.Name(), "egp", "updates_sent", &s.stats.UpdatesSent)
	reg.Counter(n.Name(), "egp", "updates_received", &s.stats.UpdatesReceived)
	reg.Counter(n.Name(), "egp", "routes_accepted", &s.stats.RoutesAccepted)
	reg.Counter(n.Name(), "egp", "loops_rejected", &s.stats.LoopsRejected)
	reg.Counter(n.Name(), "egp", "peer_expiries", &s.stats.PeerExpiries)
	return s, nil
}

// AS returns the speaker's autonomous system number.
func (s *Speaker) AS() AS { return s.as }

// Stats returns a copy of the protocol counters.
func (s *Speaker) Stats() Stats { return s.stats }

// Originate adds prefixes this AS delivers to (its interior networks) to
// every future advertisement.
func (s *Speaker) Originate(prefixes ...ipv4.Prefix) {
	s.originated = append(s.originated, prefixes...)
}

// AddPeer configures an exterior neighbor by address (it must be
// reachable by the node's routing table — typically on a shared
// inter-AS link).
func (s *Speaker) AddPeer(addr ipv4.Addr) {
	s.peers[addr] = &peer{addr: addr, lastHeard: s.k.Now(), alive: false}
}

// Start begins the periodic advertisement cycle.
func (s *Speaker) Start() {
	if s.started {
		return
	}
	s.started = true
	jitter := sim.Duration(s.k.Rand().Int63n(int64(s.cfg.UpdateInterval)/2 + 1))
	s.tick = s.k.After(jitter, s.periodic)
}

// Stop halts the cycle.
func (s *Speaker) Stop() {
	s.started = false
	s.tick.Stop()
}

func (s *Speaker) periodic() {
	if !s.started {
		return
	}
	s.expirePeers()
	s.advertise()
	s.tick = s.k.After(s.cfg.UpdateInterval, s.periodic)
}

func (s *Speaker) expirePeers() {
	now := s.k.Now()
	for addr, p := range s.peers {
		if p.alive && now.Sub(p.lastHeard) >= s.cfg.HoldTime {
			p.alive = false
			s.stats.PeerExpiries++
			s.dropRoutesFrom(addr)
		}
	}
}

// dropRoutesFrom withdraws everything learned from a dead peer and
// reselects.
func (s *Speaker) dropRoutesFrom(addr ipv4.Addr) {
	for prefix, byPeer := range s.learned {
		if _, ok := byPeer[addr]; !ok {
			continue
		}
		delete(byPeer, addr)
		s.reselect(prefix)
	}
}

// Wire format: ver(1) senderAS(2) count(1), then per entry:
// prefix(4) bits(1) pathLen(1) path ASNs (2 bytes each).
const version = 1

func (s *Speaker) advertise() {
	routes := s.exportable()
	for _, p := range s.peers {
		// Interior peers (same AS) receive paths as they are; exterior
		// peers see the AS prepended — so the AS path names each
		// administration exactly once.
		interior := p.as != 0 && p.as == s.as
		payload := []byte{version, byte(s.as >> 8), byte(s.as), 0}
		count := 0
		for _, r := range routes {
			// Suppress echoing a route straight back to the peer it
			// was learned from; the receiver-side path check handles
			// longer loops.
			if r.peer == p.addr {
				continue
			}
			path := r.path
			if !interior {
				path = append([]AS{s.as}, r.path...)
			}
			entry := make([]byte, 6+2*len(path))
			binary.BigEndian.PutUint32(entry[0:], uint32(r.prefix.Addr))
			entry[4] = byte(r.prefix.Bits)
			entry[5] = byte(len(path))
			for i, as := range path {
				binary.BigEndian.PutUint16(entry[6+2*i:], uint16(as))
			}
			payload = append(payload, entry...)
			count++
		}
		// Empty updates still go out: they are the keepalive, and an
		// update listing nothing withdraws everything (full-table
		// replacement semantics).
		payload[3] = byte(count)
		s.stats.UpdatesSent++
		s.sock.SendTo(udp.Endpoint{Addr: p.addr, Port: Port}, payload)
	}
}

// exportable returns what this speaker advertises before any per-peer AS
// prepending: its own prefixes (empty path) plus its best learned routes.
func (s *Speaker) exportable() []learnedRoute {
	var out []learnedRoute
	for _, p := range s.originated {
		out = append(out, learnedRoute{prefix: p, path: nil})
	}
	prefixes := make([]ipv4.Prefix, 0, len(s.learned))
	for p := range s.learned {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr != prefixes[j].Addr {
			return prefixes[i].Addr < prefixes[j].Addr
		}
		return prefixes[i].Bits < prefixes[j].Bits
	})
	for _, prefix := range prefixes {
		best, ok := s.best(prefix)
		if !ok {
			continue
		}
		out = append(out, learnedRoute{prefix: prefix, path: best.path, peer: best.peer})
	}
	return out
}

// best selects the shortest-path route for prefix (ties: lowest peer
// address, for determinism).
func (s *Speaker) best(prefix ipv4.Prefix) (learnedRoute, bool) {
	byPeer := s.learned[prefix]
	var bestR learnedRoute
	found := false
	for _, r := range byPeer {
		if p, ok := s.peers[r.peer]; !ok || !p.alive {
			continue
		}
		if !found || len(r.path) < len(bestR.path) ||
			(len(r.path) == len(bestR.path) && r.peer < bestR.peer) {
			bestR = r
			found = true
		}
	}
	return bestR, found
}

func (s *Speaker) input(from udp.Endpoint, data []byte, h ipv4.Header) {
	if len(data) < 4 || data[0] != version {
		return
	}
	p, ok := s.peers[from.Addr]
	if !ok {
		return // not a configured peer
	}
	p.lastHeard = s.k.Now()
	p.alive = true
	p.as = AS(binary.BigEndian.Uint16(data[1:]))
	s.stats.UpdatesReceived++

	// Full-table semantics: this update replaces everything previously
	// learned from this peer; whatever it no longer lists is withdrawn.
	announced := make(map[ipv4.Prefix]bool)
	defer func() {
		for prefix, byPeer := range s.learned {
			if _, had := byPeer[from.Addr]; had && !announced[prefix] {
				delete(byPeer, from.Addr)
				s.reselect(prefix)
			}
		}
	}()

	count := int(data[3])
	off := 4
	for i := 0; i < count; i++ {
		if off+6 > len(data) {
			return
		}
		prefix := ipv4.Prefix{
			Addr: ipv4.Addr(binary.BigEndian.Uint32(data[off:])),
			Bits: int(data[off+4]),
		}
		pathLen := int(data[off+5])
		off += 6
		if off+2*pathLen > len(data) {
			return
		}
		path := make([]AS, pathLen)
		loops := false
		for j := 0; j < pathLen; j++ {
			path[j] = AS(binary.BigEndian.Uint16(data[off+2*j:]))
			if path[j] == s.as {
				loops = true
			}
		}
		off += 2 * pathLen
		if loops {
			s.stats.LoopsRejected++
			continue
		}
		if s.ownPrefix(prefix) {
			continue // we originate it; never prefer an exterior path
		}
		byPeer := s.learned[prefix]
		if byPeer == nil {
			byPeer = make(map[ipv4.Addr]learnedRoute)
			s.learned[prefix] = byPeer
		}
		byPeer[from.Addr] = learnedRoute{prefix: prefix, path: path, peer: from.Addr}
		announced[prefix] = true
		s.stats.RoutesAccepted++
		s.reselect(prefix)
	}
}

func (s *Speaker) ownPrefix(p ipv4.Prefix) bool {
	for _, o := range s.originated {
		if o == p {
			return true
		}
	}
	return false
}

// reselect updates the kernel routing table for prefix from the current
// best exterior route.
func (s *Speaker) reselect(prefix ipv4.Prefix) {
	best, ok := s.best(prefix)
	if !ok {
		s.node.Table.Remove(prefix, stack.SourceEGP)
		return
	}
	// Resolve the interface toward the peer.
	ifIndex := -1
	for _, ifc := range s.node.Interfaces() {
		if ifc.Prefix.Contains(best.peer) {
			ifIndex = ifc.Index
			break
		}
	}
	if ifIndex < 0 {
		return // peer not directly connected; unsupported topology
	}
	s.node.Table.Add(stack.Route{
		Prefix:  prefix,
		Via:     best.peer,
		IfIndex: ifIndex,
		Metric:  len(best.path),
		Source:  stack.SourceEGP,
	})
}

// RouteCount returns the number of prefixes with a live exterior route.
func (s *Speaker) RouteCount() int {
	n := 0
	for prefix := range s.learned {
		if _, ok := s.best(prefix); ok {
			n++
		}
	}
	return n
}

// PathTo returns the selected AS path for a prefix, for tests and
// diagnostics.
func (s *Speaker) PathTo(prefix ipv4.Prefix) ([]AS, bool) {
	r, ok := s.best(prefix)
	if !ok {
		return nil, false
	}
	return r.path, true
}
