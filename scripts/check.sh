#!/usr/bin/env sh
# Full verification gate, in the same order as .github/workflows/ci.yml:
# build, vet, formatting, the test suite under the race detector (the
# campaign harness in internal/harness is the one place real concurrency
# exists — keep it honest), the pooldebug poisoning build, and the
# allocation-regression gate over the datagram hot path.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
test -z "$(gofmt -l .)"
go test -race ./...
go test -tags pooldebug ./...
# The crash/restart soak must pass with poisoned pooled buffers: a frame
# leaked (or double-released) by gateway teardown dies loudly here.
go test -tags pooldebug -count=1 -run 'TestCrashRestartSoak|TestPartitionHealTransferIntegrity' ./internal/fault/
# E11 smoke: the fault-injection recovery experiment end to end through
# the CLI, as a 2-replica campaign.
go run ./cmd/experiments -only E11 -runs 2 -faults mixed > /dev/null
# E12 smoke: a small generated internet through the CLI.
go run ./cmd/experiments -only E12 -topo 'waxman:gw=16' > /dev/null
# E13 smoke: the congestion-collapse sweep through the CLI as a
# 2-replica campaign, with the -workload flag exercised.
go run ./cmd/experiments -only E13 -runs 2 -workload 'naive=1,alpha=1.1,min=30000,max=2000000' > /dev/null
# Codec fuzzers, 10s each (go test takes one -fuzz target at a time).
go test -run '^$' -fuzz FuzzIPv4HeaderRoundTrip -fuzztime 10s ./internal/ipv4/
go test -run '^$' -fuzz FuzzTCPSegmentRoundTrip -fuzztime 10s ./internal/tcp/
go test -run '^$' -fuzz FuzzUDPDatagramRoundTrip -fuzztime 10s ./internal/udp/
go test -run '^$' -fuzz FuzzRIPMessageRoundTrip -fuzztime 10s ./internal/rip/
# Metrics determinism: the campaign JSON (which now embeds the full
# per-layer counter registry as ctr/ metrics) must be byte-identical no
# matter how many workers ran the replicas.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/experiments -only E5 -runs 4 -parallel 1 -json "$tmpdir/p1.json" > /dev/null
go run ./cmd/experiments -only E5 -runs 4 -parallel "$(nproc)" -json "$tmpdir/pn.json" > /dev/null
cmp "$tmpdir/p1.json" "$tmpdir/pn.json"
scripts/benchguard.sh
