#!/usr/bin/env sh
# Full verification gate, in the same order as .github/workflows/ci.yml:
# build, vet, formatting, staticcheck (when reachable), the test suite
# under the race detector (the campaign harness in internal/harness is
# the one place real concurrency exists — keep it honest), the pooldebug
# poisoning build, the experiment smokes, and the allocation-regression
# gate over the datagram hot path.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
test -z "$(gofmt -l .)"
# staticcheck, pinned to the same version CI runs. `go run` needs the
# module proxy; on an offline machine skip with a notice rather than
# fail — CI remains the authority.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif go run honnef.co/go/tools/cmd/staticcheck@2024.1.1 -version >/dev/null 2>&1; then
    go run honnef.co/go/tools/cmd/staticcheck@2024.1.1 ./...
else
    echo "check.sh: staticcheck unavailable offline; skipping (CI runs it)" >&2
fi
go test -race ./...
go test -tags pooldebug ./...
# The crash/restart soak must pass with poisoned pooled buffers: a frame
# leaked (or double-released) by gateway teardown dies loudly here.
go test -tags pooldebug -count=1 -run 'TestCrashRestartSoak|TestPartitionHealTransferIntegrity' ./internal/fault/
# E11 smoke: the fault-injection recovery experiment end to end through
# the CLI, as a 2-replica campaign.
go run ./cmd/experiments -only E11 -runs 2 -faults mixed > /dev/null
# E12 smoke: a small generated internet through the CLI.
go run ./cmd/experiments -only E12 -topo 'waxman:gw=16' > /dev/null
# E13 smoke: the congestion-collapse sweep through the CLI as a
# 2-replica campaign, with the -workload flag exercised.
go run ./cmd/experiments -only E13 -runs 2 -workload 'naive=1,alpha=1.1,min=30000,max=2000000' > /dev/null
# Codec fuzzers, 10s each (go test takes one -fuzz target at a time).
go test -run '^$' -fuzz FuzzIPv4HeaderRoundTrip -fuzztime 10s ./internal/ipv4/
go test -run '^$' -fuzz FuzzTCPSegmentRoundTrip -fuzztime 10s ./internal/tcp/
go test -run '^$' -fuzz FuzzUDPDatagramRoundTrip -fuzztime 10s ./internal/udp/
go test -run '^$' -fuzz FuzzRIPMessageRoundTrip -fuzztime 10s ./internal/rip/
go test -run '^$' -fuzz FuzzNamesMessageRoundTrip -fuzztime 10s ./internal/names/
# Metrics determinism: the campaign JSON (which now embeds the full
# per-layer counter registry as ctr/ metrics) must be byte-identical no
# matter how many workers ran the replicas.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/experiments -only E5 -runs 4 -parallel 1 -json "$tmpdir/p1.json" > /dev/null
go run ./cmd/experiments -only E5 -runs 4 -parallel "$(nproc)" -json "$tmpdir/pn.json" > /dev/null
cmp "$tmpdir/p1.json" "$tmpdir/pn.json"
# E13-T smoke: a 2x2 tournament cell grid through the CLI (with the
# topology axis pinned explicitly), the ranked leaderboard required
# byte-identical at any worker count.
go run ./cmd/experiments -only E13-T -ttopo transitstub -qdisc 'droptail+ecn' -cc 'naive+newreno' -runs 2 -seed 1988 -parallel 1 -leaderboard "$tmpdir/lb1.json" > /dev/null
go run ./cmd/experiments -only E13-T -ttopo transitstub -qdisc 'droptail+ecn' -cc 'naive+newreno' -runs 2 -seed 1988 -parallel 3 -leaderboard "$tmpdir/lb3.json" > /dev/null
cmp "$tmpdir/lb1.json" "$tmpdir/lb3.json"
# E14 smoke: targeted-vs-random fault campaigns on a small internet,
# with the survivability frontier required byte-identical at any worker
# count.
go run ./cmd/experiments -only E14 -stopo 'transitstub:gw=3,stubs=2,hosts=1,mix=0' -sfracs '10,20' -runs 2 -seed 1988 -parallel 1 -survive "$tmpdir/sf1.json" > /dev/null
go run ./cmd/experiments -only E14 -stopo 'transitstub:gw=3,stubs=2,hosts=1,mix=0' -sfracs '10,20' -runs 2 -seed 1988 -parallel 3 -survive "$tmpdir/sf3.json" > /dev/null
cmp "$tmpdir/sf1.json" "$tmpdir/sf3.json"
# E16 smoke: the 2000-gateway sharded kernel end to end through the
# CLI; the campaign JSON must be byte-identical at any -shards value —
# the conservative-sync acceptance check.
go run ./cmd/experiments -only E16 -seed 1988 -shards 1 -json "$tmpdir/e16-s1.json" > /dev/null
go run ./cmd/experiments -only E16 -seed 1988 -shards 4 -json "$tmpdir/e16-s4.json" > /dev/null
cmp "$tmpdir/e16-s1.json" "$tmpdir/e16-s4.json"
# E15 smoke: name-based service continuity through a directory crash;
# the darpanet/names/v1 export must be byte-identical at any -parallel
# AND any -shards value (directory traffic crosses the shard seams).
go run ./cmd/experiments -only E15 -runs 2 -seed 1988 -parallel 1 -names "$tmpdir/n-p1.json" > /dev/null
go run ./cmd/experiments -only E15 -runs 2 -seed 1988 -parallel 3 -names "$tmpdir/n-p3.json" > /dev/null
cmp "$tmpdir/n-p1.json" "$tmpdir/n-p3.json"
go run ./cmd/experiments -only E15 -runs 2 -seed 1988 -parallel 1 -shards 2 -names "$tmpdir/n-s2.json" > /dev/null
cmp "$tmpdir/n-p1.json" "$tmpdir/n-s2.json"
scripts/benchguard.sh
