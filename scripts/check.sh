#!/usr/bin/env sh
# Full verification gate: build, vet, and the test suite under the race
# detector (the campaign harness in internal/harness is the one place
# real concurrency exists — keep it honest).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
