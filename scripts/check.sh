#!/usr/bin/env sh
# Full verification gate, in the same order as .github/workflows/ci.yml:
# build, vet, formatting, the test suite under the race detector (the
# campaign harness in internal/harness is the one place real concurrency
# exists — keep it honest), the pooldebug poisoning build, and the
# allocation-regression gate over the datagram hot path.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
test -z "$(gofmt -l .)"
go test -race ./...
go test -tags pooldebug ./...
scripts/benchguard.sh
