#!/usr/bin/env sh
# benchguard: allocation-regression gate for the datagram hot path.
#
# Runs the hot-path benchmarks with -benchmem and compares allocs/op
# against the committed baseline (BENCH_baseline.txt). Any benchmark
# exceeding its baseline fails the gate. ns/op is deliberately not
# gated — wall-clock is too machine-dependent for CI — but allocs/op
# is exact and deterministic, so a regression from 0 is a real leak
# in the pooled path, not noise.
#
# After an intentional change to the baseline numbers, refresh with:
#   scripts/benchguard.sh --update
set -eu

cd "$(dirname "$0")/.."

BASELINE=BENCH_baseline.txt
PKGS="./internal/sim/ ./internal/stack/ ./internal/fault/ ./internal/topo/ ./internal/workload/ ./internal/survive/ ./internal/names/"
PATTERN='BenchmarkEventThroughput|BenchmarkTimerChurn|BenchmarkManyPendingTimers|BenchmarkForwardHotPath|BenchmarkSingleHopSend|BenchmarkForwardHotPathIdleInjector|BenchmarkScaleForward|BenchmarkForwardHotPathActiveWorkload|BenchmarkForwardHotPathSurviveCensus|BenchmarkShardedForward|BenchmarkForwardHotPathWithResolverCache'

out=$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime 1000x $PKGS)
printf '%s\n' "$out"

# Normalize to "name allocs" pairs, stripping the -GOMAXPROCS suffix so
# baselines compare across machines.
current=$(printf '%s\n' "$out" | awk '$NF == "allocs/op" {
    name = $1; sub(/-[0-9]+$/, "", name); print name, $(NF-1)
}')

if [ "${1:-}" = "--update" ]; then
    printf '%s\n' "$current" > "$BASELINE"
    echo "benchguard: baseline updated ($BASELINE)"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "benchguard: missing $BASELINE — create it with scripts/benchguard.sh --update" >&2
    exit 1
fi

printf '%s\n' "$current" | awk -v baseline="$BASELINE" '
    BEGIN {
        while ((getline line < baseline) > 0) {
            n = split(line, f, " ")
            if (n >= 2) { want[f[1]] = f[2] + 0; seen[f[1]] = 0 }
        }
        close(baseline)
    }
    {
        if (!($1 in want)) {
            print "benchguard: " $1 " has no baseline — add it with scripts/benchguard.sh --update"
            bad = 1
            next
        }
        seen[$1] = 1
        if ($2 + 0 > want[$1]) {
            print "benchguard: FAIL " $1 " allocs/op regressed: " $2 " > baseline " want[$1]
            bad = 1
        } else {
            print "benchguard: ok   " $1 " (" $2 " <= " want[$1] " allocs/op)"
        }
    }
    END {
        for (n in seen) if (!seen[n]) {
            print "benchguard: FAIL " n " in baseline but missing from bench run"
            bad = 1
        }
        exit bad
    }
'

echo "benchguard: PASS"
