// Package darpanet is a from-scratch reproduction of the architecture
// described in D. D. Clark, "The Design Philosophy of the DARPA Internet
// Protocols" (SIGCOMM 1988): a complete userspace TCP/IP internetwork —
// IP with fragmentation, TCP, UDP, ICMP, an XNET-style debugger, an
// NVP-style voice protocol, distance-vector routing and store-and-forward
// gateways — running over a deterministic discrete-event simulation of
// diverse link technologies, plus the X.25-style virtual-circuit
// architecture the paper argues against, as a measurable baseline.
//
// The library lives under internal/; start with internal/core (the
// topology builder), see DESIGN.md for the system inventory, and run
// cmd/experiments for the paper's claims reproduced as tables. The
// benchmarks in bench_test.go regenerate each experiment.
package darpanet
