package darpanet_test

import (
	"fmt"
	"runtime"
	"testing"

	"darpanet/internal/exp"
	"darpanet/internal/harness"
)

// Each benchmark regenerates one experiment table from EXPERIMENTS.md.
// The measured quantity is the wall-clock cost of simulating the whole
// experiment (the simulated time is fixed per experiment), so b.N loops
// re-run the full deterministic scenario.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(1988 + int64(i))
		if len(res.Table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1Survivability(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2TypesOfService(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3Varieties(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4Routing(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Overhead(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6NaiveHost(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7Accounting(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8FirstByte(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Repacketize(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Congestion(b *testing.B)    { benchExperiment(b, "E10") }

// BenchmarkCampaignParallel measures the Monte Carlo harness on an
// E5-sized campaign (8 replicas of the cost-of-generality experiment),
// with a single worker and with one worker per CPU. The replica work is
// identical either way — the ratio is the harness's parallel speedup.
func BenchmarkCampaignParallel(b *testing.B) {
	e, ok := exp.ByID("E5")
	if !ok {
		b.Fatal("E5 missing")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := harness.Campaign{Runs: 8, Parallel: workers, BaseSeed: 1988}
				rep := c.RunExperiment(e)
				if len(rep.Metrics) == 0 || len(rep.Failures) != 0 {
					b.Fatalf("campaign broke: %+v", rep.Failures)
				}
			}
		})
	}
}

// TestAllExperimentsProduceStableResults runs every experiment twice with
// the same seed and requires identical tables: the whole reproduction is
// deterministic.
func TestAllExperimentsProduceStableResults(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, e := range exp.All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			a := e.Run(7)
			b := e.Run(7)
			if a.Table.String() != b.Table.String() {
				t.Fatalf("%s is nondeterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					e.ID, a.Table.String(), b.Table.String())
			}
			if len(a.Table.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if fmt.Sprint(a.Metrics) != fmt.Sprint(b.Metrics) {
				t.Fatalf("%s metrics are nondeterministic:\n%v\n%v", e.ID, a.Metrics, b.Metrics)
			}
			if len(a.Metrics) == 0 {
				t.Fatalf("%s emitted no metrics", e.ID)
			}
		})
	}
}
