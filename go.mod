module darpanet

go 1.22
