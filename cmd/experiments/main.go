// Command experiments runs the darpanet reproduction experiments (E1–E13,
// one per architectural claim of Clark's 1988 design-philosophy paper,
// plus the E12 scale run and the E13 congestion-collapse sweep on
// generated internets) and prints their tables. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// With -runs N (N > 1) each experiment becomes a Monte Carlo campaign:
// N replicas run on seeds base..base+N-1 — in parallel across -parallel
// workers — and every metric is reported as mean ± 95% CI. Parallelism
// never changes results, only wall time. -json exports the aggregated
// campaign as machine-readable JSON.
//
// -faults overrides E11's failure schedule: a preset name (crash, flap,
// mixed, partition), "random" (each replica seed draws its own
// scenario), or the path of a schedule file in the internal/fault text
// format.
//
// -topo overrides E12's generated internet with an internal/topo spec
// ("shape:key=val,..."), e.g. -topo waxman:gw=64 or
// -topo transitstub:gw=40,stubs=9 — the scale experiment reruns on any
// graph the generator can build.
//
// -workload overrides E13's traffic mix with an internal/workload spec
// ("key=val,..."), e.g. -workload "rate=20,vj=1" to rerun the collapse
// sweep with Van Jacobson congestion control, or
// -workload "bulk=1,inter=0,rr=0,voice=0,naive=1" for a pure bulk
// storm. Keys: bulk, inter, rr, voice, rate, alpha, min, max, think_ms,
// vj, naive, ecn, onoff, on_ms, off_ms, cc.
//
// -qdisc selects the gateway queue policy: for E13 a single
// internal/phys policy spec ("droptail", "red:min=64,max=256,maxp=0.1",
// "ecn"), for E13-T a "+"-separated list restricting the tournament
// grid. -cc does the same for the host congestion response (naive,
// tahoe, reno, newreno). -ttopo selects the internet the tournament
// collapses on (transitstub or waxman); the topology id is carried in
// every tournament metric path and leaderboard entry. -leaderboard
// writes the E13-T campaign's ranked leaderboard as
// darpanet/tournament/v2 JSON.
//
// -stopo overrides E14's generated internet with an internal/topo spec
// and -sfracs its loss sweep as comma-separated percentages, e.g.
// -stopo transitstub:gw=6,stubs=3 -sfracs 5,10,25. -survive writes the
// E14 campaign's survivability frontier as darpanet/survive/v1 JSON.
//
// -names writes the E15 campaign's per-mode naming summary (name-based
// service continuity vs the address-pinned baseline) as
// darpanet/names/v1 JSON.
//
// -shards sets the worker count of the sharded experiments (E15, E16):
// the internet is always partitioned into the same region shards, and N
// workers advance them in lock-step epochs. Results are byte-identical
// at every -shards value; only wall-clock changes.
//
// Usage:
//
//	experiments [-seed N] [-only E1,E5] [-runs N] [-parallel N] [-json file] [-faults sched] [-topo spec] [-workload spec] [-qdisc spec] [-cc list] [-ttopo id] [-leaderboard file] [-stopo spec] [-sfracs pcts] [-survive file] [-names file] [-shards N] [-metrics]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"darpanet/internal/exp"
	"darpanet/internal/fault"
	"darpanet/internal/harness"
	"darpanet/internal/metrics"
	"darpanet/internal/phys"
	"darpanet/internal/tcp"
	"darpanet/internal/topo"
	"darpanet/internal/workload"
)

// parsePolicies parses a "+"-separated list of phys policy specs.
func parsePolicies(arg string) ([]phys.PolicySpec, error) {
	var out []phys.PolicySpec
	for _, s := range strings.Split(arg, "+") {
		p, err := phys.ParsePolicySpec(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// parseCCs parses a "+"-separated list of congestion-response names.
func parseCCs(arg string) ([]string, error) {
	var out []string
	for _, s := range strings.Split(arg, "+") {
		s = strings.TrimSpace(s)
		if tcp.CCByName(s) == nil {
			return nil, fmt.Errorf("-cc %q: want one of %s", s, strings.Join(tcp.CCNames(), ", "))
		}
		out = append(out, s)
	}
	return out, nil
}

// resolveFaults maps the -faults value to an E11 driver: a preset name,
// the "random" keyword, or a schedule file path.
func resolveFaults(arg string) (func(seed int64) exp.Result, error) {
	if arg == "random" {
		return exp.RunE11Random, nil
	}
	if s, ok := fault.Preset(arg); ok {
		return exp.RunE11With(s), nil
	}
	text, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("-faults %q: not a preset (%s), 'random', or readable file: %v",
			arg, strings.Join(fault.PresetNames(), ", "), err)
	}
	s, err := fault.Parse(filepath.Base(arg), string(text))
	if err != nil {
		return nil, err
	}
	return exp.RunE11With(s), nil
}

func main() {
	seed := flag.Int64("seed", 1988, "base simulation seed (replica i runs on seed+i)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	runs := flag.Int("runs", 1, "replicas per experiment (a Monte Carlo campaign when > 1)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "campaign worker-pool size (affects wall time only, never results)")
	jsonOut := flag.String("json", "", "write aggregated campaign results to this file as JSON")
	showMetrics := flag.Bool("metrics", false, "after each single-run table, dump the per-layer counter registry as a tree")
	faults := flag.String("faults", "", "E11 fault schedule: a preset ("+strings.Join(fault.PresetNames(), ", ")+"), 'random', or a schedule file")
	topoSpec := flag.String("topo", "", "E12 topology spec, 'shape:key=val,...' (shapes: line, ring, tree, transitstub, waxman)")
	workloadSpec := flag.String("workload", "", "E13 traffic mix, 'key=val,...' (keys: bulk, inter, rr, voice, rate, alpha, min, max, think_ms, vj, naive, ecn, onoff, on_ms, off_ms, cc)")
	qdisc := flag.String("qdisc", "", "gateway queue policy: E13 takes one spec (droptail|red|ecn[:k=v,...]), E13-T a '+'-separated grid restriction")
	ccFlag := flag.String("cc", "", "host congestion response: E13 takes one name (naive|tahoe|reno|newreno), E13-T a '+'-separated grid restriction")
	tTopo := flag.String("ttopo", "", "E13-T topology id: transitstub (default) or waxman; carried in every tournament metric path")
	leaderboard := flag.String("leaderboard", "", "write the E13-T campaign's ranked leaderboard to this file as darpanet/tournament/v2 JSON")
	sTopo := flag.String("stopo", "", "E14 topology spec, 'shape:key=val,...' (same syntax as -topo)")
	sFracs := flag.String("sfracs", "", "E14 loss sweep as comma-separated percentages of infrastructure lost, e.g. '2,5,10,20'")
	surviveOut := flag.String("survive", "", "write the E14 campaign's survivability frontier to this file as darpanet/survive/v1 JSON")
	namesOut := flag.String("names", "", "write the E15 campaign's naming summary to this file as darpanet/names/v1 JSON")
	shards := flag.Int("shards", 1, "E15/E16 worker count (results are byte-identical at any value; only wall time changes)")
	flag.Parse()

	e11Run := exp.RunE11
	if *faults != "" {
		var err error
		if e11Run, err = resolveFaults(*faults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	e12Run := exp.RunE12
	if *topoSpec != "" {
		spec, err := topo.ParseSpec(*topoSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e12Run = exp.RunE12With(spec)
	}
	policies, err := parsePolicies(nonEmpty(*qdisc, "droptail+red+ecn"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ccs, err := parseCCs(nonEmpty(*ccFlag, "naive+tahoe+reno+newreno"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	e13Run := exp.RunE13
	if *workloadSpec != "" || *qdisc != "" || *ccFlag != "" {
		ws := exp.E13Workload()
		if *workloadSpec != "" {
			if ws, err = workload.ParseSpec(*workloadSpec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *ccFlag != "" {
			ws.CC = ccs[0] // E13 is a single cell: first named response wins
			ws.ECN = policies[0].Kind == phys.PolicyECN
		}
		e13Run = exp.RunE13Policy(ws, policies[0])
	}

	e13tRun := exp.RunE13T
	if *qdisc != "" || *ccFlag != "" || *tTopo != "" {
		var cells []exp.E13TCell
		for _, p := range policies {
			for _, cc := range ccs {
				cells = append(cells, exp.E13TCell{Policy: p, CC: cc})
			}
		}
		if e13tRun, err = exp.RunE13TGrid(*tTopo, cells, nil, 0, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	e14Run := exp.RunE14
	if *sTopo != "" || *sFracs != "" {
		var spec topo.Spec
		if *sTopo != "" {
			var err error
			if spec, err = topo.ParseSpec(*sTopo); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fracs, err := parseFracs(*sFracs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e14Run = exp.RunE14With(spec, fracs)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	fmt.Printf("darpanet experiment suite — base seed %d, %d run(s) per experiment\n", *seed, *runs)
	fmt.Printf("reproducing: Clark, \"The Design Philosophy of the DARPA Internet Protocols\", SIGCOMM 1988\n\n")

	var reports []*harness.Report
	ran := 0
	for _, e := range exp.All {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if e.ID == "E11" {
			e.Run = e11Run
			if *faults != "" {
				e.Title += " [-faults " + *faults + "]"
			}
		}
		if e.ID == "E12" {
			e.Run = e12Run
			if *topoSpec != "" {
				e.Title += " [-topo " + *topoSpec + "]"
			}
		}
		if e.ID == "E13" {
			e.Run = e13Run
			if *workloadSpec != "" {
				e.Title += " [-workload " + *workloadSpec + "]"
			}
			if *qdisc != "" {
				e.Title += " [-qdisc " + *qdisc + "]"
			}
		}
		if e.ID == "E13-T" {
			e.Run = e13tRun
			if *qdisc != "" || *ccFlag != "" {
				e.Title += fmt.Sprintf(" [%d-cell grid]", len(policies)*len(ccs))
			}
			if *tTopo != "" {
				e.Title += " [-ttopo " + *tTopo + "]"
			}
		}
		if e.ID == "E14" {
			e.Run = e14Run
			if *sTopo != "" {
				e.Title += " [-stopo " + *sTopo + "]"
			}
			if *sFracs != "" {
				e.Title += " [-sfracs " + *sFracs + "]"
			}
		}
		// No title suffix for -shards: the worker count must not leave a
		// trace in the report, which is compared byte for byte across
		// shard counts.
		if e.ID == "E15" && *shards != 1 {
			e.Run = exp.RunE15Workers(*shards)
		}
		if e.ID == "E16" && *shards != 1 {
			e.Run = exp.RunE16Workers(*shards)
		}
		start := time.Now()
		c := harness.Campaign{
			Runs:     *runs,
			Parallel: *parallel,
			BaseSeed: *seed,
			OnReplicaDone: func(done, total int) {
				if total > 1 {
					fmt.Fprintf(os.Stderr, "\r%s: %d/%d replicas", e.ID, done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			},
		}
		rep := c.RunExperiment(e)
		reports = append(reports, rep)

		if *runs <= 1 {
			// Single run: the classic table report.
			if rep.First != nil {
				fmt.Println(rep.First.String())
				if *showMetrics {
					fmt.Printf("counters (schema %s):\n%s\n", metrics.Schema, rep.First.Counters.Tree())
				}
			}
		} else {
			// Campaign: aggregate every metric as mean ± 95% CI.
			fmt.Printf("%s — %s\n", rep.ID, rep.Title)
			fmt.Printf("campaign: %d runs, seeds %d..%d, %d workers\n\n",
				rep.Runs, rep.BaseSeed, rep.BaseSeed+int64(rep.Runs)-1, *parallel)
			tbl := rep.Table()
			fmt.Println(tbl.String())
		}
		for _, f := range rep.Failures {
			fmt.Printf("FAILED replica seed %d: %s\n", f.Seed, f.Error)
		}
		fmt.Printf("(%s wall time: %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only")
		os.Exit(1)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteJSON(f, *seed, *runs, reports); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiment campaign(s), schema darpanet/campaign/v1)\n", *jsonOut, len(reports))
	}

	if *leaderboard != "" {
		var t *harness.Tournament
		for _, rep := range reports {
			if rep.ID == "E13-T" {
				t = harness.BuildTournament(rep)
				break
			}
		}
		if t == nil || len(t.Entries) == 0 {
			fmt.Fprintln(os.Stderr, "-leaderboard: no E13-T campaign in this run")
			os.Exit(1)
		}
		f, err := os.Create(*leaderboard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteTournamentJSON(f, t); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d-cell leaderboard, schema darpanet/tournament/v2)\n", *leaderboard, len(t.Entries))
		for _, e := range t.Entries {
			fmt.Printf("  #%d %-28s score %.3f (collapse %.2f, peak %.2f Mb/s, jain %.3f)\n",
				e.Rank, e.Name, e.Score, e.CollapseRatio, e.PeakGoodputBps/1e6, e.Jain)
		}
	}

	if *surviveOut != "" {
		var fr *harness.Frontier
		for _, rep := range reports {
			if rep.ID == "E14" {
				fr = harness.BuildFrontier(rep)
				break
			}
		}
		if fr == nil || len(fr.Rows) == 0 {
			fmt.Fprintln(os.Stderr, "-survive: no E14 campaign in this run")
			os.Exit(1)
		}
		f, err := os.Create(*surviveOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteFrontierJSON(f, fr); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d-row frontier, schema darpanet/survive/v1)\n", *surviveOut, len(fr.Rows))
		for _, r := range fr.Rows {
			fmt.Printf("  %-8s %5.1f%% lost: goodput %.2f of baseline, %.1f partitions, largest %.2f\n",
				r.Mode, r.LostPct, r.GoodputFrac, r.Partitions, r.LargestFrac)
		}
	}

	if *namesOut != "" {
		var nr *harness.NamesReport
		for _, rep := range reports {
			if rep.ID == "E15" {
				nr = harness.BuildNames(rep)
				break
			}
		}
		if nr == nil || len(nr.Rows) == 0 {
			fmt.Fprintln(os.Stderr, "-names: no E15 campaign in this run")
			os.Exit(1)
		}
		f, err := os.Create(*namesOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteNamesJSON(f, nr); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d-row naming summary, schema darpanet/names/v1)\n", *namesOut, len(nr.Rows))
		for _, r := range nr.Rows {
			fmt.Printf("  %-5s continuity %.3f (p50 %.1fms, p90 %.1fms, cache hit %.2f, %d attempts)\n",
				r.Mode, r.Continuity, r.ResolveP50, r.ResolveP90, r.CacheHit, int(r.Attempts))
		}
	}
}

// parseFracs parses a comma-separated percentage list ("2,5,10,20")
// into fractions; empty input keeps the E14 default sweep.
func parseFracs(arg string) ([]float64, error) {
	if arg == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(arg, ",") {
		var pct float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &pct); err != nil || pct <= 0 || pct > 100 {
			return nil, fmt.Errorf("-sfracs %q: want percentages in (0,100], e.g. '2,5,10,20'", arg)
		}
		out = append(out, pct/100)
	}
	return out, nil
}

// nonEmpty returns s, or fallback when s is empty.
func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
