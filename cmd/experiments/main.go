// Command experiments runs the darpanet reproduction experiments (E1–E10,
// one per architectural claim of Clark's 1988 design-philosophy paper)
// and prints their tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	experiments [-seed N] [-only E1,E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darpanet/internal/exp"
)

func main() {
	seed := flag.Int64("seed", 1988, "simulation seed (runs are deterministic per seed)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	fmt.Printf("darpanet experiment suite — seed %d\n", *seed)
	fmt.Printf("reproducing: Clark, \"The Design Philosophy of the DARPA Internet Protocols\", SIGCOMM 1988\n\n")

	ran := 0
	for _, e := range exp.All {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		res := e.Run(*seed)
		fmt.Println(res.String())
		fmt.Printf("(%s wall time: %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only")
		os.Exit(1)
	}
}
