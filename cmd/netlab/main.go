// Command netlab builds and drives darpanet internetworks from a small
// scenario script, read from a file or stdin. It exists so topologies can
// be explored without writing Go.
//
// Usage:
//
//	netlab [-seed N] [script.nl]
//
// Script language (one command per line, '#' comments):
//
//	net <name> <prefix> <lan|p2p|radio> [rate=<bps>] [delay=<dur>] [mtu=<n>] [loss=<p>] [queue=<n>]
//	host <name> <net> [<net>...]
//	gateway <name> <net> [<net>...]
//	static                      # install oracle routes
//	rip                         # start distance-vector routing everywhere
//	priority <node>             # ToS priority queueing at a gateway
//	run <duration>              # advance simulated time (e.g. 10s, 500ms)
//	ping <from> <to> <count>    # echo probes, printed as they return
//	transfer <from> <to> <bytes> <port>   # start a TCP bulk transfer
//	crash <node> | restore <node>
//	cut <net> | uncut <net>
//	trace <from> <to>           # TTL-walk the path (traceroute)
//	tap <node>                  # start capturing datagrams at a node
//	dump <node>                 # print and clear a node's capture
//	routes <node>               # dump a routing table
//	stats <node>                # dump IP counters
//	transfers                   # report all transfers' progress
//
// Example:
//
//	net lanA 10.1.0.0/24 lan rate=10000000 delay=1ms
//	net lanB 10.2.0.0/24 lan rate=10000000 delay=1ms
//	host a lanA
//	host b lanB
//	gateway gw lanA lanB
//	static
//	ping a b 3
//	run 2s
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"darpanet/internal/core"
	"darpanet/internal/exp"
	"darpanet/internal/phys"
	"darpanet/internal/rip"
	"darpanet/internal/sim"
	"darpanet/internal/stack"
	"darpanet/internal/stats"
	"darpanet/internal/tcp"
	"darpanet/internal/trace"
)

type lab struct {
	nw        *core.Network
	transfers map[string]*transferState
	taps      map[string]*trace.Buffer
	lineNo    int
}

type transferState struct {
	name     string
	target   int
	received *int
	conn     *tcp.Conn
}

func main() {
	seed := int64(1)
	args := os.Args[1:]
	if len(args) >= 2 && args[0] == "-seed" {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			fatal("bad seed %q", args[1])
		}
		seed = v
		args = args[2:]
	}
	in := os.Stdin
	if len(args) >= 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}

	l := &lab{nw: core.New(seed), transfers: make(map[string]*transferState), taps: make(map[string]*trace.Buffer)}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		l.lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		l.exec(line)
	}
	if err := sc.Err(); err != nil {
		fatal("read: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "netlab: "+format+"\n", args...)
	os.Exit(1)
}

func (l *lab) fail(format string, args ...any) {
	fatal("line %d: "+format, append([]any{l.lineNo}, args...)...)
}

func (l *lab) exec(line string) {
	defer func() {
		if r := recover(); r != nil {
			l.fail("%v", r)
		}
	}()
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "net":
		l.cmdNet(args)
	case "host", "gateway":
		if len(args) < 2 {
			l.fail("%s needs a name and at least one net", cmd)
		}
		if cmd == "host" {
			l.nw.AddHost(args[0], args[1:]...)
		} else {
			l.nw.AddGateway(args[0], args[1:]...)
		}
	case "static":
		l.nw.InstallStaticRoutes()
	case "rip":
		l.nw.EnableRIP(rip.Config{
			UpdateInterval: 2 * time.Second,
			RouteTimeout:   7 * time.Second,
			GCTimeout:      4 * time.Second,
			TriggeredDelay: 200 * time.Millisecond,
		})
	case "priority":
		l.need(args, 1, "priority <node>")
		l.nw.EnablePriorityQueueing(args[0], 32)
	case "run":
		l.need(args, 1, "run <duration>")
		d, err := time.ParseDuration(args[0])
		if err != nil {
			l.fail("bad duration %q", args[0])
		}
		l.nw.RunFor(d)
		fmt.Printf("t=%s\n", l.nw.Now())
	case "ping":
		l.need(args, 3, "ping <from> <to> <count>")
		count, _ := strconv.Atoi(args[2])
		from := args[0]
		l.nw.Node(from).Ping(l.nw.Addr(args[1]), count, 200*time.Millisecond,
			func(seq uint16, rtt sim.Duration) {
				fmt.Printf("%s: reply from %s seq=%d rtt=%.2fms\n", from, args[1], seq, float64(rtt)/1e6)
			})
	case "transfer":
		l.need(args, 4, "transfer <from> <to> <bytes> <port>")
		nbytes, _ := strconv.Atoi(args[2])
		port, _ := strconv.Atoi(args[3])
		l.startTransfer(args[0], args[1], nbytes, uint16(port))
	case "crash":
		l.need(args, 1, "crash <node>")
		l.nw.CrashNode(args[0])
		fmt.Printf("%s crashed\n", args[0])
	case "restore":
		l.need(args, 1, "restore <node>")
		l.nw.RestoreNode(args[0])
		fmt.Printf("%s restored\n", args[0])
	case "cut":
		l.need(args, 1, "cut <net>")
		l.nw.SetNetDown(args[0], true)
	case "uncut":
		l.need(args, 1, "uncut <net>")
		l.nw.SetNetDown(args[0], false)
	case "tap":
		l.need(args, 1, "tap <node>")
		name := args[0]
		buf := &trace.Buffer{Limit: 200}
		l.taps[name] = buf
		k := l.nw.Kernel()
		l.nw.Node(name).SetPacketTap(func(send bool, iface string, raw []byte) {
			dir := trace.Recv
			if send {
				dir = trace.Send
			}
			buf.Add(trace.Event{At: k.Now(), Node: name, Dir: dir, Iface: iface, Raw: append([]byte(nil), raw...)})
		})
	case "dump":
		l.need(args, 1, "dump <node>")
		if buf, ok := l.taps[args[0]]; ok {
			fmt.Print(buf.String())
			buf.Events = nil
		} else {
			l.fail("no tap on %q (use: tap %s)", args[0], args[0])
		}
	case "trace":
		l.need(args, 2, "trace <from> <to>")
		from := args[0]
		l.nw.Node(from).Traceroute(l.nw.Addr(args[1]), 30, time.Second, func(hops []stack.Hop) {
			fmt.Printf("trace %s -> %s:\n", from, args[1])
			for i, h := range hops {
				if h.Addr.IsZero() {
					fmt.Printf("  %2d  *\n", i+1)
					continue
				}
				mark := ""
				if h.Reached {
					mark = "  (destination)"
				}
				fmt.Printf("  %2d  %-15s %.2fms%s\n", i+1, h.Addr, float64(h.RTT)/1e6, mark)
			}
		})
	case "routes":
		l.need(args, 1, "routes <node>")
		fmt.Printf("routes at %s:\n%s", args[0], l.nw.Node(args[0]).Table.String())
	case "stats":
		l.need(args, 1, "stats <node>")
		s := l.nw.Node(args[0]).Stats()
		fmt.Printf("%s: in=%d delivered=%d forwarded=%d out=%d noroute=%d ttl=%d frag=%d\n",
			args[0], s.InReceives, s.InDelivers, s.Forwarded, s.OutRequests,
			s.NoRoute, s.TTLDrops, s.FragCreated)
	case "transfers":
		for _, tr := range l.transfers {
			pct := 100 * float64(*tr.received) / float64(tr.target)
			fmt.Printf("%s: %s / %s (%.1f%%)\n", tr.name,
				stats.HumanBytes(uint64(*tr.received)), stats.HumanBytes(uint64(tr.target)), pct)
		}
	case "experiment":
		l.need(args, 1, "experiment <id>")
		e, ok := exp.ByID(strings.ToUpper(args[0]))
		if !ok {
			l.fail("unknown experiment %q", args[0])
		}
		fmt.Println(e.Run(1988).String())
	default:
		l.fail("unknown command %q", cmd)
	}
}

func (l *lab) need(args []string, n int, usage string) {
	if len(args) < n {
		l.fail("usage: %s", usage)
	}
}

func (l *lab) cmdNet(args []string) {
	if len(args) < 3 {
		l.fail("usage: net <name> <prefix> <kind> [opts]")
	}
	var kind core.NetKind
	switch args[2] {
	case "lan":
		kind = core.LAN
	case "p2p":
		kind = core.P2P
	case "radio":
		kind = core.Radio
	default:
		l.fail("unknown net kind %q", args[2])
	}
	cfg := phys.Config{BitsPerSec: 10_000_000, Delay: time.Millisecond, MTU: 1500}
	for _, opt := range args[3:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			l.fail("bad option %q", opt)
		}
		switch k {
		case "rate":
			cfg.BitsPerSec, _ = strconv.ParseInt(v, 10, 64)
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				l.fail("bad delay %q", v)
			}
			cfg.Delay = d
		case "mtu":
			cfg.MTU, _ = strconv.Atoi(v)
		case "loss":
			cfg.Loss, _ = strconv.ParseFloat(v, 64)
		case "queue":
			cfg.QueueLimit, _ = strconv.Atoi(v)
		default:
			l.fail("unknown option %q", k)
		}
	}
	l.nw.AddNet(args[0], args[1], kind, cfg)
}

func (l *lab) startTransfer(from, to string, nbytes int, port uint16) {
	received := new(int)
	l.nw.TCP(to).Listen(port, tcp.Options{}, func(c *tcp.Conn) {
		c.OnData(func(b []byte) { *received += len(b) })
	})
	conn, err := l.nw.TCP(from).Dial(tcp.Endpoint{Addr: l.nw.Addr(to), Port: port}, tcp.Options{SendBufferSize: 65535})
	if err != nil {
		l.fail("dial: %v", err)
	}
	rest := make([]byte, nbytes)
	push := func() {
		for len(rest) > 0 {
			n, err := conn.Write(rest)
			if n == 0 || err != nil {
				return
			}
			rest = rest[n:]
		}
		conn.Close()
	}
	conn.OnEstablished(push)
	conn.OnWriteSpace(push)
	name := fmt.Sprintf("%s->%s:%d", from, to, port)
	l.transfers[name] = &transferState{name: name, target: nbytes, received: received, conn: conn}
	fmt.Printf("transfer %s started (%s)\n", name, stats.HumanBytes(uint64(nbytes)))
}
